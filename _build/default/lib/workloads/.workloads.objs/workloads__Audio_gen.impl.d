lib/workloads/audio_gen.ml: Array Rng
