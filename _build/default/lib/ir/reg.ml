(* Virtual registers. Each function owns two unbounded banks, one for
   32-bit integers and one for IEEE-754 doubles, mirroring the MIPS
   integer/FP split the paper's analysis operates on. *)

type t =
  | Int of int
  | Flt of int

let int i =
  assert (i >= 0);
  Int i

let flt i =
  assert (i >= 0);
  Flt i

let is_int = function Int _ -> true | Flt _ -> false
let is_flt = function Flt _ -> true | Int _ -> false

let index = function Int i -> i | Flt i -> i

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

let to_string = function
  | Int i -> Printf.sprintf "$r%d" i
  | Flt i -> Printf.sprintf "$f%d" i

let pp fmt r = Format.pp_print_string fmt (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
