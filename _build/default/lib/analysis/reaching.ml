(* Reaching definitions: for each program point, which definition sites
   may supply the current value of each register. Definition sites are
   body indices; parameter k of the function is the pseudo-site [-1-k].
   The paper frames its CVar computation as the dual of this textbook
   analysis; we keep it for def-use chain construction and tests. *)

module IS = Dataflow.Int_set_domain.S
module F = Dataflow.Forward (Dataflow.Int_set_domain)

type t = {
  cfg : Ir.Cfg.t;
  sites_of_reg : (Ir.Reg.t, IS.t) Hashtbl.t;  (* incl. parameter pseudo-sites *)
  result : F.result;
}

let param_site k = -1 - k

let sites_of_reg_tbl (f : Ir.Func.t) =
  let tbl = Hashtbl.create 32 in
  let add r i =
    let prev = Option.value ~default:IS.empty (Hashtbl.find_opt tbl r) in
    Hashtbl.replace tbl r (IS.add i prev)
  in
  List.iteri (fun k p -> add p (param_site k)) f.Ir.Func.params;
  Array.iteri
    (fun i instr ->
      match Ir.Instr.def instr with Some d -> add d i | None -> ())
    f.Ir.Func.body;
  tbl

let sites t r =
  Option.value ~default:IS.empty (Hashtbl.find_opt t.sites_of_reg r)

let transfer sites_of_reg i instr state =
  match Ir.Instr.def instr with
  | None -> state
  | Some d ->
    let all =
      Option.value ~default:IS.empty (Hashtbl.find_opt sites_of_reg d)
    in
    IS.add i (IS.diff state all)

let compute (cfg : Ir.Cfg.t) =
  let sites_of_reg = sites_of_reg_tbl cfg.Ir.Cfg.func in
  let entry_state =
    List.mapi (fun k _ -> param_site k) cfg.Ir.Cfg.func.Ir.Func.params
    |> List.fold_left (fun acc i -> IS.add i acc) IS.empty
  in
  let result = F.solve cfg ~entry_state ~transfer:(transfer sites_of_reg) in
  { cfg; sites_of_reg; result }

let reach_in t b = t.result.F.in_state.(b)
let reach_out t b = t.result.F.out_state.(b)

(* Definition sites of [reg] that may reach the instruction at body
   index [use_index] (i.e. the state just before it executes),
   restricted to sites defining [reg]. *)
let reaching_defs_of_use t ~use_index ~reg =
  let b = Ir.Cfg.block_of_index t.cfg use_index in
  let blk = Ir.Cfg.block t.cfg b in
  let state = ref (reach_in t b) in
  Ir.Cfg.iter_instrs t.cfg blk (fun i instr ->
      if i < use_index then state := transfer t.sites_of_reg i instr !state);
  IS.inter !state (sites t reg)
