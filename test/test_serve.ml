(* Campaign daemon (Harness.Serve + Harness.Proto).

   The load-bearing properties:
   - the etap-serve/1 line protocol round-trips: requests parse with
     CLI-default fields, malformed lines salvage their id and yield a
     typed error instead of raising, responses read back losslessly;
   - a served inject/matrix report carries tables bit-identical to the
     equivalent standalone run (same seed derivation, same cache);
   - the second identical request is answered from the warm registry —
     no app reload, no target re-preparation, zero trials executed;
   - two identical in-flight requests coalesce: trials run exactly
     once and both clients receive the same document;
   - failures are typed responses, never crashes: unknown apps and
     malformed lines leave the connection serving, a client that
     vanishes mid-request leaves the daemon serving. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let fresh_cache_dir () =
  incr dir_counter;
  let d = Printf.sprintf "_serve_test_cache_%d" !dir_counter in
  rm_rf d;
  d

(* A daemon over a fresh cache, torn down (executor joined, cache
   removed) even when the test body raises. *)
let with_serve ?gate f =
  let dir = fresh_cache_dir () in
  let config =
    { Harness.Serve.default_config with cache_dir = dir; jobs = Some 2; gate }
  in
  let t = Harness.Serve.create ~config () in
  Fun.protect
    ~finally:(fun () ->
      Harness.Serve.shutdown t;
      rm_rf dir)
    (fun () -> f t)

(* One connection against [t]'s handler, pipes standing in for the
   socket: write [lines], close, collect every response line. *)
let exchange t (lines : string list) : string list =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let handler =
    Thread.create
      (fun () ->
        ignore (Harness.Serve.serve_connection t ~ic ~oc);
        close_out_noerr oc)
      ()
  in
  let req = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      output_string req l;
      output_char req '\n')
    lines;
  close_out req;
  let resp_ic = Unix.in_channel_of_descr resp_r in
  let rec collect acc =
    match input_line resp_ic with
    | l -> collect (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = collect [] in
  Thread.join handler;
  close_in_noerr resp_ic;
  close_in_noerr ic;
  responses

let reply_exn line =
  match Harness.Proto.reply_of_line line with
  | Ok r -> r
  | Error m -> Alcotest.failf "unreadable response %S: %s" line m

let report_exn (r : Harness.Proto.reply) =
  match r.Harness.Proto.report with
  | Some rep -> rep
  | None -> Alcotest.fail "response without a report"

let member_exn name j =
  match Report.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "report without %S" name

(* The identity surface of a served report: its tables. Cache-stat
   meta legitimately varies with cache state. *)
let tables_of (r : Harness.Proto.reply) =
  Report.Json.to_compact_string (member_exn "tables" (report_exn r))

let inject_line ?(id = 1) ~errors ~trials ~seed app =
  Report.Json.to_compact_string
    (Report.Json.Obj
       [
         ("id", Report.Json.Int id);
         ("cmd", Report.Json.Str "inject");
         ("app", Report.Json.Str app);
         ("errors", Report.Json.Int errors);
         ("trials", Report.Json.Int trials);
         ("seed", Report.Json.Int seed);
       ])

(* ----------------------------- protocol ---------------------------- *)

let test_proto_requests () =
  let id, req =
    Harness.Proto.request_of_line {|{"id":7,"cmd":"inject","app":"gsm"}|}
  in
  Alcotest.(check bool) "id echoed" true (id = Report.Json.Int 7);
  (match req with
   | Ok (Harness.Proto.Inject i) ->
     (* Optional fields fall back to the CLI flag defaults. *)
     Alcotest.(check string) "app" "gsm" i.Harness.Proto.app;
     Alcotest.(check int) "default errors" 10 i.Harness.Proto.errors;
     Alcotest.(check int) "default trials" 20 i.Harness.Proto.trials;
     Alcotest.(check int) "default seed" 1 i.Harness.Proto.seed;
     Alcotest.(check bool) "default literal" false i.Harness.Proto.literal
   | _ -> Alcotest.fail "expected an inject request");
  (match Harness.Proto.request_of_line {|{"id":2,"cmd":"ping"}|} with
   | _, Ok Harness.Proto.Ping -> ()
   | _ -> Alcotest.fail "expected ping");
  (match
     Harness.Proto.request_of_line
       {|{"id":3,"cmd":"matrix","spec":{"apps":["gsm"],"errors":[1,2]}}|}
   with
   | _, Ok (Harness.Proto.Matrix s) ->
     Alcotest.(check (list string)) "spec apps" [ "gsm" ] s.Harness.Matrix.apps;
     Alcotest.(check (list int)) "spec errors" [ 1; 2 ] s.Harness.Matrix.errors
   | _ -> Alcotest.fail "expected a matrix request");
  (* Malformed lines never raise: junk salvages no id, a bad field
     salvages the id it was addressed with. *)
  (match Harness.Proto.request_of_line "not json at all" with
   | Report.Json.Null, Error _ -> ()
   | _ -> Alcotest.fail "junk should fail with a null id");
  (match Harness.Proto.request_of_line {|{"id":9,"cmd":"frobnicate"}|} with
   | Report.Json.Int 9, Error _ -> ()
   | _ -> Alcotest.fail "unknown cmd should fail, keeping its id")

let test_proto_group_key () =
  let parse l = snd (Harness.Proto.request_of_line l) |> Result.get_ok in
  let k l = Harness.Proto.group_key (parse l) in
  (* Ids and field order are not part of a request's identity. *)
  Alcotest.(check string) "id not in key"
    (k {|{"id":1,"cmd":"inject","app":"gsm","errors":3}|})
    (k {|{"errors":3,"cmd":"inject","app":"gsm","id":2}|});
  Alcotest.(check bool) "trials in key" true
    (k {|{"id":1,"cmd":"inject","app":"gsm","trials":5}|}
    <> k {|{"id":1,"cmd":"inject","app":"gsm","trials":6}|})

let test_proto_responses () =
  let rep =
    Report.make ~command:"inject" ~meta:[ ("app", Report.Json.Str "gsm") ]
      [
        Report.table ~id:"t" ~title:"t"
          ~columns:[ Report.column ~key:"k" "k" ]
          [ [ Report.int 1 ] ];
      ]
  in
  let ok =
    reply_exn
      (Harness.Proto.response_line
         { Harness.Proto.rid = Report.Json.Int 4; report = Some rep;
           error = None; extra = [] })
  in
  Alcotest.(check bool) "ok status" true ok.Harness.Proto.ok;
  Alcotest.(check bool) "report embedded" true (ok.Harness.Proto.report <> None);
  let failed =
    reply_exn
      (Harness.Proto.response_line
         { Harness.Proto.rid = Report.Json.Null; report = None;
           error = Some "boom"; extra = [] })
  in
  Alcotest.(check bool) "failed status" false failed.Harness.Proto.ok;
  Alcotest.(check (option string)) "error carried" (Some "boom")
    failed.Harness.Proto.error

(* --------------------- served = standalone ------------------------- *)

(* The CLI inject path, daemon-free: Experiment.load + Memo.run over
   Pool fan-out, the same report builder. Distinct cache, same seed
   derivation — trials must be bit-identical. *)
let direct_inject ~errors ~trials ~seed app_name =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Core.Memo.Store.open_ dir in
  let app = Option.get (Apps.Registry.find app_name) in
  let l = Harness.Experiment.load ~seed ~engine:Sim.Interp.Fast app in
  let b = l.Harness.Experiment.built in
  let target = l.Harness.Experiment.target Harness.Experiment.Full in
  let golden = target.Core.Campaign.baseline in
  let score r = b.Apps.App.score ~golden r in
  let totals = ref Core.Memo.zero_stats in
  let summaries =
    List.map
      (fun policy ->
        let p = l.Harness.Experiment.prepared Harness.Experiment.Full policy in
        let sections = Core.Memo.sections_of p in
        let s, st =
          Core.Memo.run ~jobs:2 ~score ~salt:app_name ~sections ~store p
            ~errors ~trials ~seed:(seed + 100)
        in
        totals := Harness.Serve.add_stats !totals st;
        (policy, s))
      [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
  in
  Harness.Serve.inject_report ~app:app_name ~errors ~trials ~seed
    ~literal:false ~engine:Sim.Interp.Fast ~jobs:None ~checkpoint_stride:None
    ~fidelity_units:b.Apps.App.fidelity_units
    ~cache:(Some (dir, !totals))
    summaries

let test_inject_bit_identity () =
  let errors = 2 and trials = 5 and seed = 1 in
  let served =
    with_serve @@ fun t ->
    reply_exn
      (List.hd (exchange t [ inject_line ~errors ~trials ~seed "gsm" ]))
  in
  Alcotest.(check bool) "served ok" true served.Harness.Proto.ok;
  let direct = direct_inject ~errors ~trials ~seed "gsm" in
  let direct_tables =
    Report.Json.to_compact_string
      (member_exn "tables" (Report.to_json direct))
  in
  Alcotest.(check string) "tables bit-identical to the standalone run"
    direct_tables (tables_of served)

let test_matrix_bit_identity () =
  let spec_json =
    {|{"apps":["gsm","adpcm"],"errors":[1],"trials":3,"seed":1}|}
  in
  let line =
    Printf.sprintf {|{"id":1,"cmd":"matrix","spec":%s}|} spec_json
  in
  let served =
    with_serve @@ fun t -> reply_exn (List.hd (exchange t [ line ]))
  in
  Alcotest.(check bool) "served ok" true served.Harness.Proto.ok;
  (* The standalone sweep over its own fresh cache. *)
  let spec =
    Result.get_ok
      (Harness.Matrix.spec_of_json ~base:Harness.Matrix.default_spec
         (Result.get_ok (Report.Json.of_string spec_json)))
  in
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Core.Memo.Store.open_ dir in
  let r = Harness.Matrix.run ~jobs:2 ~store spec in
  let direct_tables =
    Report.Json.to_compact_string
      (Report.Json.Arr
         (List.map Report.table_json
            [ Harness.Matrix.to_table r; Harness.Matrix.anomaly_table r ]))
  in
  Alcotest.(check string) "matrix tables bit-identical to the standalone sweep"
    direct_tables (tables_of served)

(* --------------------------- warm state ---------------------------- *)

let spans_named name (v : Obs.view) =
  List.length
    (List.filter (fun s -> s.Obs.sp_name = name) v.Obs.spans)

let counter name (v : Obs.view) =
  Option.value ~default:0 (List.assoc_opt name v.Obs.counters)

let test_warm_reuse () =
  with_serve @@ fun t ->
  let line = inject_line ~errors:2 ~trials:4 ~seed:1 "adpcm" in
  let first = reply_exn (List.hd (exchange t [ line ])) in
  Alcotest.(check bool) "cold ok" true first.Harness.Proto.ok;
  (* Fresh sink around the repeat: everything it records belongs to
     the second request alone. *)
  let sink = Obs.make () in
  let second =
    Obs.with_sink sink (fun () -> reply_exn (List.hd (exchange t [ line ])))
  in
  let v = Obs.view sink in
  Alcotest.(check int) "no app reload" 0 (spans_named "serve.load" v);
  Alcotest.(check int) "no target re-preparation" 0
    (spans_named "serve.prepare" v);
  Alcotest.(check bool) "registry hits recorded" true
    (counter "serve.warm_hit" v > 0);
  Alcotest.(check int) "zero trials executed" 0 (counter "campaign.trials" v);
  (match member_exn "cache_trials_run" (member_exn "meta" (report_exn second)) with
   | Report.Json.Int 0 -> ()
   | j ->
     Alcotest.failf "warm meta cache_trials_run: %s"
       (Report.Json.to_compact_string j));
  Alcotest.(check string) "warm tables identical" (tables_of first)
    (tables_of second)

(* --------------------------- coalescing ---------------------------- *)

let test_coalescing () =
  (* The gate parks the winning request between flight registration
     and compute until the second request has attached as a waiter, so
     the overlap is deterministic. *)
  let tref = ref None in
  let gate key =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match !tref with
      | Some t when Harness.Serve.inflight_waiters t ~key >= 1 -> ()
      | _ ->
        if Unix.gettimeofday () < deadline then begin
          Thread.yield ();
          wait ()
        end
    in
    wait ()
  in
  (* Trials a single request executes, measured on its own daemon and
     cache. *)
  let line = inject_line ~errors:2 ~trials:4 ~seed:1 "gsm" in
  let single_sink = Obs.make () in
  let single =
    with_serve @@ fun t ->
    Obs.with_sink single_sink (fun () ->
        reply_exn (List.hd (exchange t [ line ])))
  in
  let single_trials = counter "campaign.trials" (Obs.view single_sink) in
  Alcotest.(check bool) "single run executed trials" true (single_trials > 0);
  with_serve ~gate @@ fun t ->
  tref := Some t;
  let sink = Obs.make () in
  let ra = ref "" and rb = ref "" in
  Obs.with_sink sink (fun () ->
      let th_a = Thread.create (fun () -> ra := List.hd (exchange t [ line ])) () in
      let th_b = Thread.create (fun () -> rb := List.hd (exchange t [ line ])) () in
      Thread.join th_a;
      Thread.join th_b);
  let v = Obs.view sink in
  Alcotest.(check int) "one request coalesced" 1 (counter "serve.coalesced" v);
  Alcotest.(check int) "pair ran trials exactly once" single_trials
    (counter "campaign.trials" v);
  Alcotest.(check string) "both clients got the same document" !ra !rb;
  Alcotest.(check string) "coalesced tables match the standalone run"
    (tables_of single)
    (tables_of (reply_exn !ra))

(* ------------------------- typed failures -------------------------- *)

let test_typed_failures () =
  with_serve @@ fun t ->
  (* One connection: junk line, unknown app, then a real request —
     each gets a typed response and the connection keeps serving. *)
  let responses =
    exchange t
      [
        "this is not json";
        inject_line ~id:2 ~errors:1 ~trials:2 ~seed:1 "nope";
        inject_line ~id:3 ~errors:1 ~trials:2 ~seed:1 "gsm";
      ]
  in
  Alcotest.(check int) "every line answered" 3 (List.length responses);
  let r1 = reply_exn (List.nth responses 0) in
  Alcotest.(check bool) "malformed line fails" false r1.Harness.Proto.ok;
  Alcotest.(check bool) "malformed line has a null id" true
    (r1.Harness.Proto.id = Report.Json.Null);
  let r2 = reply_exn (List.nth responses 1) in
  Alcotest.(check bool) "unknown app fails" false r2.Harness.Proto.ok;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "unknown app named in the error" true
    (match r2.Harness.Proto.error with
     | Some e -> contains e {|"nope"|}
     | None -> false);
  let r3 = reply_exn (List.nth responses 2) in
  Alcotest.(check bool) "connection still serves real work" true
    r3.Harness.Proto.ok;
  Alcotest.(check int) "daemon-side failure count" 2
    (Harness.Serve.failed_requests t)

let test_client_disconnect () =
  with_serve @@ fun t ->
  (* Client sends a request then vanishes — both pipe ends closed
     before the response can be written. The handler's send fails;
     the daemon must shrug, not die. *)
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let handler =
    Thread.create
      (fun () ->
        ignore (Harness.Serve.serve_connection t ~ic ~oc);
        close_out_noerr oc)
      ()
  in
  let req = Unix.out_channel_of_descr req_w in
  output_string req (inject_line ~errors:1 ~trials:2 ~seed:1 "gsm");
  output_char req '\n';
  flush req;
  (* Vanish: the response pipe has no reader from here on. *)
  Unix.close resp_r;
  close_out_noerr req;
  Thread.join handler;
  close_in_noerr ic;
  (* A fresh connection is served normally. *)
  let r =
    reply_exn
      (List.hd (exchange t [ inject_line ~errors:1 ~trials:2 ~seed:1 "gsm" ]))
  in
  Alcotest.(check bool) "daemon survives and serves" true r.Harness.Proto.ok

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests parse with CLI defaults" `Quick
            test_proto_requests;
          Alcotest.test_case "group keys name the computation" `Quick
            test_proto_group_key;
          Alcotest.test_case "responses round-trip" `Quick
            test_proto_responses;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "served inject = standalone inject" `Quick
            test_inject_bit_identity;
          Alcotest.test_case "served matrix = standalone sweep" `Quick
            test_matrix_bit_identity;
        ] );
      ( "warm state",
        [
          Alcotest.test_case "second request reuses the registry" `Quick
            test_warm_reuse;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "identical in-flight requests run once" `Quick
            test_coalescing;
        ] );
      ( "failures",
        [
          Alcotest.test_case "typed failures keep the connection up" `Quick
            test_typed_failures;
          Alcotest.test_case "client disconnect mid-request" `Quick
            test_client_disconnect;
        ] );
    ]
