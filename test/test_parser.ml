(* Tests for the Mlang surface-syntax lexer and parser: whole programs
   are parsed, compiled and executed; surface programs are checked to
   behave identically to their DSL equivalents. *)

let run_source ?entry src =
  let prog = Mlang.Parser.compile ?entry src in
  Sim.Interp.run_exn (Sim.Code.of_prog prog)

let ret_int ?entry src =
  match (run_source ?entry src).Sim.Interp.outcome with
  | Sim.Interp.Done (Some (Sim.Value.I v)) -> v
  | _ -> Alcotest.fail "expected an int return"

(* ------------------------------------------------------------------ *)

let test_gcd () =
  let src =
    {|
    // greatest common divisor, the classic
    int gcd(int a, int b) {
      while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
      }
      return a;
    }

    protected int main() {
      return gcd(252, 105);
    }
  |}
  in
  Alcotest.(check int) "gcd" 21 (ret_int src)

let test_globals_and_arrays () =
  let src =
    {|
    global int data[4] = { 10, 20, -30, 40 };
    global byte small[4] = { 250, 3 };
    global float w[2] = { 0.5, 1.5 };
    global int out[4];

    int main() {
      int acc = 0;
      for (int k = 0; k < 4; k = k + 1) {
        acc = acc + data[k];
        out[k] = acc;
      }
      /* byte semantics: stores truncate, loads zero-extend */
      small[2] = 300;
      acc = acc + small[0] + small[2];
      return acc + f2i(w[0] + w[1]);
    }
  |}
  in
  (* 40 + 250 + (300 land 255 = 44) + f2i 2.0 = 336 *)
  Alcotest.(check int) "arrays" 336 (ret_int src)

let test_precedence () =
  (* 2 + 3 * 4 = 14; (2+3)*4 = 20; shifts and masks at C-like levels *)
  Alcotest.(check int) "mul binds tighter" 14
    (ret_int "int main() { return 2 + 3 * 4; }");
  Alcotest.(check int) "parens" 20
    (ret_int "int main() { return (2 + 3) * 4; }");
  Alcotest.(check int) "shift below add" 32
    (ret_int "int main() { return 1 << 2 + 3; }");
  Alcotest.(check int) "cmp below shift" 1
    (ret_int "int main() { return 4 < 1 << 3; }");
  Alcotest.(check int) "and below eq" 1
    (ret_int "int main() { return 3 & 2 == 2; }");
  Alcotest.(check int) "logical ops" 1
    (ret_int "int main() { return 1 < 2 && 3 != 4; }");
  Alcotest.(check int) "unary minus" (-6)
    (ret_int "int main() { return -2 * 3; }");
  Alcotest.(check int) "not" 0 (ret_int "int main() { return !5; }");
  Alcotest.(check int) "ashr" (-2)
    (ret_int "int main() { return -8 >> 2; }");
  Alcotest.(check int) "lshr" 1073741822
    (ret_int "int main() { return -8 >>> 2; }")

let test_control_flow () =
  let src =
    {|
    int main() {
      int acc = 0;
      int k = 0;
      while (1) {
        k = k + 1;
        if (k > 7) { break; }
        if (k % 2 == 0) { continue; }
        acc = acc + k;
      }
      if (acc == 16) { return 1; } else { return 0; }
    }
  |}
  in
  Alcotest.(check int) "while/break/continue/if" 1 (ret_int src)

let test_floats_and_calls () =
  let src =
    {|
    global float out[1];

    float scale(float x, float k) {
      return x * k + 0.25;
    }

    void store_it(float v) {
      out[0] = v;
    }

    int main() {
      float y = scale(1.5, 4.0);
      store_it(y);
      return f2i(y);
    }
  |}
  in
  let prog = Mlang.Parser.compile src in
  let r = Sim.Interp.run_exn (Sim.Code.of_prog prog) in
  (match r.Sim.Interp.outcome with
   | Sim.Interp.Done (Some (Sim.Value.I 6)) -> ()
   | _ -> Alcotest.fail "expected 6");
  let out = Sim.Memory.read_global_flts r.Sim.Interp.memory prog "out" in
  Alcotest.(check (float 0.0)) "stored" 6.25 out.(0)

let test_protected_marks_ineligible () =
  let src =
    {|
    int kernel(int x) { return x + 1; }
    protected int main() { return kernel(1); }
  |}
  in
  let prog = Mlang.Parser.compile src in
  Alcotest.(check bool) "kernel eligible" true
    (Ir.Prog.get_func prog "kernel").Ir.Func.eligible;
  Alcotest.(check bool) "main protected" false
    (Ir.Prog.get_func prog "main").Ir.Func.eligible

let test_comments () =
  let src =
    {|
    // line comment
    /* block
       comment */
    int main() {
      return /* inline */ 5; // trailing
    }
  |}
  in
  Alcotest.(check int) "comments ignored" 5 (ret_int src)

(* Surface syntax and the OCaml DSL must agree. *)
let test_surface_equals_dsl () =
  let surface =
    {|
    global int out[8];
    int main() {
      int acc = 0;
      for (int a = 0; a < 4; a = a + 1) {
        for (int b = 0; b < 4; b = b + 1) {
          acc = acc + a * b;
          out[a] = acc;
        }
      }
      return acc;
    }
  |}
  in
  let dsl =
    let open Mlang.Dsl in
    program
      [ garray "out" 8 ]
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "acc" (i 0);
            for_ "a" (i 0) (i 4)
              [
                for_ "b" (i 0) (i 4)
                  [
                    set "acc" (v "acc" +! (v "a" *! v "b"));
                    sto "out" (v "a") (v "acc");
                  ];
              ];
            ret (v "acc");
          ];
      ]
  in
  let run prog =
    let r = Sim.Interp.run_exn (Sim.Code.of_prog prog) in
    ( r.Sim.Interp.outcome,
      Sim.Memory.read_global_ints r.Sim.Interp.memory prog "out" )
  in
  let o1, m1 = run (Mlang.Parser.compile surface) in
  let o2, m2 = run (Mlang.Compile.to_ir dsl) in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check (array int)) "same memory" m2 m1

let test_parse_errors () =
  let expect_err src =
    match Mlang.Parser.parse_program_res src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  in
  expect_err "int main() { return 1 }";          (* missing ; *)
  expect_err "int main() { return @; }";         (* bad char *)
  expect_err "int main() { for (int i = 0; i > 5; i = i + 1) {} return 0; }";
  expect_err "int main() { for (int i = 0; j < 5; i = i + 1) {} return 0; }";
  expect_err "global int g[]; int main() { return 0; }";
  expect_err "int main() { /* unterminated";
  expect_err "banana"

let test_parse_then_typecheck_error () =
  (* parses fine, fails the typechecker *)
  match Mlang.Parser.parse_program_res "int main() { return 1.5 + 2; }" with
  | Error _ -> Alcotest.fail "should parse"
  | Ok prog -> begin
    match Mlang.Compile.to_ir prog with
    | _ -> Alcotest.fail "expected a type error"
    | exception Mlang.Ast.Type_error _ -> ()
  end

let test_fault_campaign_on_parsed_source () =
  (* the whole pipeline: source text -> IR -> tagging -> injection *)
  let src =
    {|
    global int input[16] = { 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3 };
    global int output[16];

    void kernel() {
      for (int k = 0; k < 16; k = k + 1) {
        output[k] = input[k] * input[k] + 1;
      }
    }

    protected int main() {
      kernel();
      return 0;
    }
  |}
  in
  let prog = Mlang.Parser.compile src in
  let target = Core.Campaign.of_prog prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_control in
  Alcotest.(check bool) "squares are injectable" true
    (p.Core.Campaign.injectable_total > 0);
  let s = Core.Campaign.run p ~errors:2 ~trials:20 ~seed:5 in
  Alcotest.(check int) "all complete under protection" 20
    (Core.Campaign.completed s)

let () =
  Alcotest.run "parser"
    [
      ( "programs",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "globals and arrays" `Quick
            test_globals_and_arrays;
          Alcotest.test_case "floats and calls" `Quick test_floats_and_calls;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "protected" `Quick test_protected_marks_ineligible;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "surface = DSL" `Quick test_surface_equals_dsl;
        ] );
      ( "expressions",
        [ Alcotest.test_case "precedence" `Quick test_precedence ] );
      ( "errors",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "type error after parse" `Quick
            test_parse_then_typecheck_error;
        ] );
      ( "integration",
        [
          Alcotest.test_case "campaign on parsed source" `Quick
            test_fault_campaign_on_parsed_source;
        ] );
    ]
