examples/quickstart.ml: Array Core Fidelity Int32 List Mlang Printf Sim
