(** Functional simulator — the SimpleScalar sim-safe role in the
    paper's methodology: exact architectural state, no timing model,
    faithful traps, and the paper's fault-injection hook.

    An {!injection} carries a per-instruction injectability mask (the
    tagging analysis output) and a plan over ordinals *among dynamic
    executions of injectable instructions*. When execution reaches a
    planned ordinal, the chosen bit is flipped in the just-computed
    destination value before write-back; the corruption then
    propagates architecturally.

    The plan is stored pre-sorted by ordinal and consumed with a
    monotone cursor, so the per-execution check is one integer compare
    (ordinals are assigned in increasing order). Build values with
    {!injection} rather than filling the record directly. *)

type injection = {
  tags : bool array array;  (** fid -> body index -> injectable *)
  plan_ords : int array;    (** planned ordinals, strictly increasing *)
  plan_bits : int array;    (** bit to flip, parallel to [plan_ords] *)
}

val injection : tags:bool array array -> plan:(int * int) list -> injection
(** [injection ~tags ~plan] sorts the [(ordinal, bit)] pairs by
    ordinal. Raises [Invalid_argument] on a negative or duplicate
    ordinal. *)

type outcome =
  | Done of Value.t option  (** entry function returned *)
  | Trapped of Trap.t
  | Timeout  (** exceeded the dynamic-instruction budget *)

type result = {
  outcome : outcome;
  dyn_count : int;
  injectable_seen : int;
  faults_landed : int;
  memory : Memory.t;
  exec_counts : int array array;
      (** per-function, per-body-index execution counts; populated only
          when [count_exec] was set (empty array otherwise) *)
  trap_site : (string * int) option;
      (** provenance of a [Trapped] outcome: name of the function and
          body index of the instruction whose evaluation trapped.
          Stack-overflow traps are attributed to the overflowing call
          site. [None] for [Done] and [Timeout]. *)
  landed_sites : (string * int) array;
      (** (function name, body index) of each landed fault, in landing
          order; length [faults_landed]. Return write-back landings are
          attributed to the caller's [DCall], matching where the
          injection hook runs. The raw material of the obs fault-site
          attribution profile. *)
  fault_flow : Taint.summary option;
      (** shadow-taint fault-flow classification; [Some] iff the run
          was started with [~taint:true] *)
}

exception Timeout_exn

val max_call_depth : int

(** {1 Engines}

    Two engines execute the same explicit machine. The {e reference}
    engine is the match-dispatch loop — one [Code.d] match per dynamic
    instruction, easy to audit. The {e fast} engine pre-compiles each
    function body into a flat array of specialized closures (threaded
    dispatch: operand indices, immediates, branch targets and
    injectability tags resolved at compile time, control transfer by
    direct tail call). Both produce bit-identical results — outcomes,
    counters, trap sites, landed-fault attribution, snapshots — pinned
    by the cross-engine differential suite in [test_engine].

    Selection is by construction: a machine built from a compiled
    {!image} runs fast; one built without runs on the reference
    engine. *)

type engine =
  | Fast  (** threaded-closure dispatch (the default in campaigns) *)
  | Ref   (** match-dispatch reference loop *)

val engine_name : engine -> string

type image
(** A program compiled for the fast engine against one (code, tags)
    pair. Immutable and safe to share across domains; compile once per
    prepared campaign target, reuse for every trial. *)

val compile : ?tags:bool array array -> Code.t -> image
(** Compile every function body into its closure table. [tags]
    (default: none) must be the exact mask later passed in the
    {!injection} — the machine constructors enforce this by physical
    equality. *)

(** {1 Explicit machine}

    The plain interpreter is an explicit machine — a frame stack plus
    the dynamic counters — so execution can pause at any
    injectable-ordinal boundary, be captured into an immutable
    {!snapshot}, and resume later. This is the substrate of
    checkpointed fork-from-prefix campaigns (see [Sim.Snapshot] and
    [Core.Campaign]). *)

type machine
(** A paused or running execution. Mutable; single-owner. *)

val machine :
  ?image:image ->
  ?injection:injection ->
  ?lenient:bool ->
  ?budget:int ->
  ?count_exec:bool ->
  ?memory:Memory.t ->
  Code.t ->
  machine
(** A fresh machine at the entry function, same defaults as {!run}.
    [memory] supplies a pre-built image (ownership transfers to the
    machine; [lenient] is then ignored — the image carries its own
    access model) instead of laying one out from the program's
    globals. [image] selects the fast engine; it must have been
    compiled from this [code] and with the same tag-mask array as
    [injection] (physical equality), and is incompatible with
    [count_exec] (profiling stays on the reference engine) — raises
    [Invalid_argument] otherwise. *)

val advance : machine -> pause_at:int -> [ `Halted | `Paused ]
(** Execute until the machine halts, or pause as soon as [pause_at]
    injectable ordinals have been seen. Ordinals advance by at most one
    per dispatched instruction and the pause check precedes dispatch,
    so a pause lands exactly at ordinal [pause_at], before any ordinal
    [>= pause_at] is consumed. Calling {!advance} on a halted machine
    returns [`Halted] and does nothing. *)

val finish : machine -> result
(** Run to completion ([advance ~pause_at:max_int]) and package the
    result. [fault_flow] is always [None] on this path. *)

type snapshot
(** An immutable copy of a paused machine's full architectural state
    (memory image, frame stack, counters). One snapshot can seed any
    number of {!resume}d trials, concurrently across domains — restore
    copies everything mutable. *)

val capture : machine -> snapshot
(** Snapshot a paused machine. Raises [Invalid_argument] if the
    machine has halted, was created with [count_exec], or has already
    landed a fault — snapshots are taken on fault-free (golden)
    passes only. *)

val resume : ?image:image -> ?injection:injection -> snapshot -> machine
(** A fresh machine restored from the snapshot, with a new plan.
    Raises [Invalid_argument] if the plan's first ordinal precedes the
    snapshot's ordinal (that fault could never land). [image] selects
    the fast engine for the resumed execution, with the same validity
    rules as {!machine}; snapshots carry no engine state, so a capture
    under one engine may resume under the other. *)

val snapshot_ordinal : snapshot -> int
(** Injectable ordinal at which the snapshot was taken. *)

val snapshot_dyn : snapshot -> int
(** Dynamic instructions executed up to the snapshot — the work a
    resumed trial skips. *)

val snapshot_digest : fid_key:(int -> string) -> snapshot -> string
(** Hex MD5 over the snapshot's full architectural state: counters,
    frame stack (each frame's function named by [fid_key fid] — pass a
    rename-stable identity such as a section local hash — plus its pc
    and both register banks) and the memory image. Equal digests mean
    resuming either snapshot is observably identical. *)

val machine_fid : machine -> int
(** Fid of the frame the dispatch loop is executing in. At a pause this
    is exactly the frame that consumed the most recent injectable
    ordinal — compositional campaigns pause at [o + 1] and read it to
    attribute ordinal [o] to its owning section. *)

val run :
  ?image:image ->
  ?injection:injection ->
  ?lenient:bool ->
  ?budget:int ->
  ?count_exec:bool ->
  ?taint:bool ->
  ?memory:Memory.t ->
  Code.t ->
  result
(** Execute from the entry function. [budget] defaults to 10^8 dynamic
    instructions; [lenient] selects the memory model (default strict).
    [taint] (default off) runs the shadow-taint twin of the
    interpreter: identical architectural behaviour and fault landings,
    plus a {!Taint.summary} in [fault_flow]. The plain path pays
    nothing for the feature — taint mode is a separate (host-stack
    recursive, non-snapshotable) loop, and is engine-independent:
    passing [image] with [taint] raises [Invalid_argument]. [image]
    and [memory] as in {!machine}. *)

val run_exn :
  ?image:image ->
  ?lenient:bool ->
  ?budget:int ->
  ?count_exec:bool ->
  Code.t ->
  result
(** Like {!run} for fault-free execution: fails on trap or timeout. *)
