(** Classification of an injected run (paper Section 5): catastrophic
    failures are crashes and "infinite" executions; completed runs are
    scored by the application's fidelity measure. *)

type t =
  | Crash of Sim.Trap.t
  | Infinite  (** exceeded the dynamic-instruction budget *)
  | Completed of Sim.Interp.result

val of_result : Sim.Interp.result -> t
val is_catastrophic : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
