lib/harness/tablefmt.ml: Buffer List Option Printf String
