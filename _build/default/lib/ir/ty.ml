(* Value types of the IR: 32-bit integers and IEEE-754 doubles, plus
   unsigned bytes for global array *elements* only (registers always
   hold i32 or f64; byte loads zero-extend). *)

type t =
  | I32
  | F64
  | I8

let equal (a : t) (b : t) = a = b
let to_string = function I32 -> "i32" | F64 -> "f64" | I8 -> "u8"
let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_reg r = if Reg.is_int r then I32 else F64
