(* Campaign telemetry sink (DESIGN.md §13).

   The ambient sink is an atomic ref; [disabled] is a distinguished
   value recognised by physical equality, so every recording entry
   point costs one load and one compare when telemetry is off — no
   allocation, no branch in the caller beyond its own [enabled ()]
   guard.

   An enabled sink is a registry of per-domain buffers. A domain
   acquires its buffer once (domain-local storage keyed by the sink's
   id, registered under the sink's mutex) and then writes without any
   synchronisation: buffers are never shared between domains, and
   [view] runs after the writing domains have been joined (Pool joins
   every worker before returning), so the merge reads quiescent
   buffers. All merge operations are commutative and associative —
   counter sums, histogram bucket sums, site-tally sums — which is what
   makes the merged totals independent of the domain fan-out and of
   buffer registration order. *)

(* ------------------------------------------------------------------ *)
(* Histogram.                                                          *)

module IntMap = Map.Make (Int)

module Hist = struct
  type t = {
    n : int;
    bkts : int IntMap.t;
  }

  let empty = { n = 0; bkts = IntMap.empty }

  (* 8 sub-buckets per octave. Indices are clamped to the largest
     finite power [2^1023], so [bucket_value] is always finite;
     non-positive and NaN samples use the underflow sentinel. *)
  let sub_per_octave = 8.0
  let max_index = 8 * 1023
  let underflow = -max_index - 8

  let bucket_of x =
    if Float.is_nan x || x <= 0.0 then underflow
    else begin
      let i = Float.round (sub_per_octave *. Float.log2 x) in
      if i >= float_of_int max_index then max_index
      else if i <= float_of_int (-max_index) then -max_index
      else int_of_float i
    end

  let bucket_value i =
    if i <= underflow then 0.0 else 2.0 ** (float_of_int i /. sub_per_octave)

  let add h x =
    let b = bucket_of x in
    {
      n = h.n + 1;
      bkts =
        IntMap.update b
          (function None -> Some 1 | Some c -> Some (c + 1))
          h.bkts;
    }

  let merge a b =
    if a.n = 0 then b
    else if b.n = 0 then a
    else
      {
        n = a.n + b.n;
        bkts = IntMap.union (fun _ x y -> Some (x + y)) a.bkts b.bkts;
      }

  let count h = h.n
  let buckets h = IntMap.bindings h.bkts

  (* [diff newer older] subtracts bucket-wise. Buckets only ever grow on
     a live sink, so on snapshots taken from the same sink the delta is
     exact; counts are clamped at zero (and empty buckets dropped) so a
     racy read can never produce a negative histogram. Like [merge],
     this works bucket-by-bucket, which is what makes interval deltas
     independent of the domain fan-out. *)
  let diff a b =
    if b.n = 0 then a
    else begin
      let bkts =
        IntMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some x, Some y -> if x - y > 0 then Some (x - y) else None
            | Some x, None -> Some x
            | None, _ -> None)
          a.bkts b.bkts
      in
      { n = IntMap.fold (fun _ c acc -> acc + c) bkts 0; bkts }
    end

  (* Upper bound on the sum of samples, reconstructed from bucket
     representatives (the histogram does not store the exact sum).
     Within one bucket the representative is at most ~9% above any
     member, so the approximation error is bounded by the bucket
     ratio. Used by the OpenMetrics [_sum] sample. *)
  let sum_approx h =
    IntMap.fold
      (fun b c acc -> acc +. (float_of_int c *. bucket_value b))
      h.bkts 0.0

  let quantile h q =
    if h.n = 0 then None
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
      let rank = min rank h.n in
      let rec walk seen = function
        | [] -> assert false (* counts sum to n >= rank *)
        | (b, c) :: rest ->
          if seen + c >= rank then Some (bucket_value b)
          else walk (seen + c) rest
      in
      walk 0 (IntMap.bindings h.bkts)
    end
end

(* ------------------------------------------------------------------ *)
(* Sinks and per-domain buffers.                                       *)

type cls =
  | Crash
  | Infinite
  | Completed

let cls_index = function Crash -> 0 | Infinite -> 1 | Completed -> 2

type span_ev = {
  sp_name : string;
  sp_cat : string;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_tid : int;
  sp_args : (string * string) list;
}

type buf = {
  b_tid : int;
  b_counters : (string, int ref) Hashtbl.t;
  b_hists : (string, Hist.t ref) Hashtbl.t;
  b_sites : (string * int, int array) Hashtbl.t;
  mutable b_spans : span_ev list;  (* reversed *)
}

type sink = {
  id : int;  (* 0 iff disabled *)
  mu : Mutex.t;
  record_spans : bool;
      (* [false] for always-on sinks (the serve daemon): counters,
         histograms and site tallies are bounded-size aggregates, but
         spans are a per-event list that would grow without bound over
         a daemon's lifetime. *)
  mutable bufs : buf list;
}

let disabled = { id = 0; mu = Mutex.create (); record_spans = false; bufs = [] }
let next_id = Atomic.make 1

let make ?(record_spans = true) () =
  {
    id = Atomic.fetch_and_add next_id 1;
    mu = Mutex.create ();
    record_spans;
    bufs = [];
  }

let ambient : sink Atomic.t = Atomic.make disabled
let install s = Atomic.set ambient s
let installed () = Atomic.get ambient
let enabled () = (Atomic.get ambient).id <> 0

let with_sink s f =
  let prev = installed () in
  install s;
  Fun.protect ~finally:(fun () -> install prev) f

(* The per-domain buffer of the ambient sink, created and registered on
   a domain's first write to that sink. The key caches (sink id, buf):
   a stale pair from a previously installed sink fails the id check and
   is replaced. *)
let dls_buf : (int * buf) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let buf_for (s : sink) : buf =
  match Domain.DLS.get dls_buf with
  | Some (id, b) when id = s.id -> b
  | _ ->
    let b =
      {
        b_tid = (Domain.self () :> int);
        b_counters = Hashtbl.create 32;
        b_hists = Hashtbl.create 8;
        b_sites = Hashtbl.create 32;
        b_spans = [];
      }
    in
    Mutex.lock s.mu;
    s.bufs <- b :: s.bufs;
    Mutex.unlock s.mu;
    Domain.DLS.set dls_buf (Some (s.id, b));
    b

(* ------------------------------------------------------------------ *)
(* Recording.                                                          *)

let count name v =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace b.b_counters name (ref v)
  end

let observe name x =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    match Hashtbl.find_opt b.b_hists name with
    | Some r -> r := Hist.add !r x
    | None -> Hashtbl.replace b.b_hists name (ref (Hist.add Hist.empty x))
  end

let site ~func ~pc cls =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    let key = (func, pc) in
    let cell =
      match Hashtbl.find_opt b.b_sites key with
      | Some c -> c
      | None ->
        let c = Array.make 3 0 in
        Hashtbl.replace b.b_sites key c;
        c
    in
    let i = cls_index cls in
    cell.(i) <- cell.(i) + 1
  end

(* Span clock: CLOCK_MONOTONIC (bechamel's stubs — already in the
   dependency closure), rebased once at module init onto the wall
   clock. Monotonicity is what matters operationally — daemon uptime
   and span durations must survive wall-clock steps (NTP, suspend) —
   while the epoch rebase keeps the stamps at the same epoch-µs
   magnitudes as the previous [Unix.gettimeofday] source, so trace
   export (which rebases to the earliest span) is byte-compatible. *)
let mono_ns0 = Monotonic_clock.now ()
let wall_us0 = Unix.gettimeofday () *. 1e6

let now_us () =
  wall_us0 +. (Int64.to_float (Int64.sub (Monotonic_clock.now ()) mono_ns0) /. 1e3)

let span_begin () = if enabled () then now_us () else 0.0
let elapsed_us t0 = now_us () -. t0

let span_end ~name ?(cat = "etap") ?(args = []) t0 =
  let s = Atomic.get ambient in
  if s.id <> 0 && s.record_spans && t0 > 0.0 then begin
    let b = buf_for s in
    b.b_spans <-
      {
        sp_name = name;
        sp_cat = cat;
        sp_ts_us = t0;
        sp_dur_us = now_us () -. t0;
        sp_tid = b.b_tid;
        sp_args = args;
      }
      :: b.b_spans
  end

let span ~name ?cat f =
  let t0 = span_begin () in
  Fun.protect ~finally:(fun () -> span_end ~name ?cat t0) f

(* ------------------------------------------------------------------ *)
(* Merged views.                                                       *)

type view = {
  counters : (string * int) list;
  hists : (string * Hist.t) list;
  sites : ((string * int) * int array) list;
  spans : span_ev list;
}

let view (s : sink) : view =
  Mutex.lock s.mu;
  let bufs = s.bufs in
  Mutex.unlock s.mu;
  let counters = Hashtbl.create 64 in
  let hists = Hashtbl.create 16 in
  let sites = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt counters k with
          | Some acc -> Hashtbl.replace counters k (acc + !r)
          | None -> Hashtbl.replace counters k !r)
        b.b_counters;
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt hists k with
          | Some acc -> Hashtbl.replace hists k (Hist.merge acc !r)
          | None -> Hashtbl.replace hists k !r)
        b.b_hists;
      Hashtbl.iter
        (fun k c ->
          match Hashtbl.find_opt sites k with
          | Some acc -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) c
          | None -> Hashtbl.replace sites k (Array.copy c))
        b.b_sites;
      spans := List.rev_append b.b_spans !spans)
    bufs;
  let sorted_assoc tbl cmp =
    List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    counters = sorted_assoc counters String.compare;
    hists = sorted_assoc hists String.compare;
    sites = sorted_assoc sites compare;
    spans =
      List.sort
        (fun a b ->
          match Float.compare a.sp_ts_us b.sp_ts_us with
          | 0 -> (
            match Int.compare a.sp_tid b.sp_tid with
            | 0 -> String.compare a.sp_name b.sp_name
            | c -> c)
          | c -> c)
        !spans;
  }

(* A view is already an immutable value — [view] copies every counter,
   rebuilds every histogram and duplicates every site array — so a
   point-in-time snapshot of a live sink is just a view taken without
   waiting for the writers to quiesce. Reads of buffers that other
   domains are still mutating are memory-safe under OCaml 5 (each cell
   read yields some previously written value); a snapshot may lag the
   writers by in-flight increments, but successive snapshots of one
   sink are monotone per counter and per bucket once the intervening
   work has a happens-before edge to the reader (the serve daemon
   snapshots under its state lock, after worker batches have landed —
   there the deltas are exact). *)
let snapshot = view

let span_compare a b =
  match Float.compare a.sp_ts_us b.sp_ts_us with
  | 0 -> (
    match Int.compare a.sp_tid b.sp_tid with
    | 0 -> String.compare a.sp_name b.sp_name
    | c -> c)
  | c -> c

(* Sorted-assoc merge: both inputs ascend by key, the output does too.
   [combine] is only called on keys present in both. *)
let rec merge_assoc cmp combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = cmp ka kb in
    if c = 0 then (ka, combine va vb) :: merge_assoc cmp combine ta tb
    else if c < 0 then (ka, va) :: merge_assoc cmp combine ta b
    else (kb, vb) :: merge_assoc cmp combine a tb

(* Merge two views with the same commutative, associative operations
   [view] uses across per-domain buffers — so merging views of two
   sinks is indistinguishable from one sink having collected both
   streams. *)
let merge (a : view) (b : view) : view =
  {
    counters = merge_assoc String.compare ( + ) a.counters b.counters;
    hists = merge_assoc String.compare Hist.merge a.hists b.hists;
    sites =
      merge_assoc compare
        (fun x y -> Array.init 3 (fun i -> x.(i) + y.(i)))
        a.sites b.sites;
    spans = List.merge span_compare a.spans b.spans;
  }

(* [diff newer older] is the interval between two snapshots of one
   sink: counters and site tallies subtract, histograms diff
   bucket-wise ([Hist.diff]). Because every family is mergeable
   bucket-by-bucket/key-by-key, diff distributes over merge — the
   delta of merged streams equals the merge of per-stream deltas — so
   interval statistics are exact and jobs-invariant, like the totals.
   Zero entries are dropped (the canonical form [merge] also
   produces), and keys present only in [older] vanish. Spans are the
   multiset difference (an older snapshot's spans are a sub-multiset
   of a newer one's). *)
let diff (newer : view) (older : view) : view =
  let rec diff_assoc cmp sub keep a b =
    match (a, b) with
    | rest, [] -> List.filter (fun (_, v) -> keep v) rest
    | [], _ -> []
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = cmp ka kb in
      if c = 0 then begin
        let v = sub va vb in
        if keep v then (ka, v) :: diff_assoc cmp sub keep ta tb
        else diff_assoc cmp sub keep ta tb
      end
      else if c < 0 then
        if keep va then (ka, va) :: diff_assoc cmp sub keep ta b
        else diff_assoc cmp sub keep ta b
      else diff_assoc cmp sub keep a tb
  in
  let rec diff_spans n o =
    match (n, o) with
    | n, [] -> n
    | [], _ -> []
    | x :: tn, y :: to_ ->
      if x = y then diff_spans tn to_
      else if span_compare x y <= 0 then x :: diff_spans tn o
      else diff_spans n to_
  in
  {
    counters =
      diff_assoc String.compare ( - ) (fun v -> v <> 0) newer.counters
        older.counters;
    hists =
      diff_assoc String.compare Hist.diff
        (fun h -> Hist.count h > 0)
        newer.hists older.hists;
    sites =
      diff_assoc compare
        (fun x y -> Array.init 3 (fun i -> x.(i) - y.(i)))
        (fun a -> Array.exists (fun v -> v <> 0) a)
        newer.sites older.sites;
    spans = diff_spans newer.spans older.spans;
  }

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

module Json = Report.Json

let trace_schema_version = "etap-trace/1"
let metrics_schema_version = "etap-metrics/1"

(* Chrome trace-event format: "X" (complete) events with microsecond
   [ts]/[dur], one pid, one tid per recording domain, plus "M"
   metadata events naming the threads. Perfetto and chrome://tracing
   both ignore unknown top-level keys, so the document also carries the
   [schema] marker the CI validation step dispatches on. *)
let trace_json (v : view) : Json.t =
  let tids =
    List.sort_uniq Int.compare (List.map (fun e -> e.sp_tid) v.spans)
  in
  (* Rebase timestamps to the earliest span: viewers only care about
     relative time, and epoch-microsecond magnitudes (~1.8e15) would
     lose sub-10ms precision to the 12-significant-digit float
     printer. *)
  let t_base =
    List.fold_left (fun m e -> Float.min m e.sp_ts_us) infinity v.spans
  in
  let thread_meta =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("ph", Json.Str "M");
            ("name", Json.Str "thread_name");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" tid)) ]);
          ])
      tids
  in
  let events =
    List.map
      (fun e ->
        Json.Obj
          [
            ("name", Json.Str e.sp_name);
            ("cat", Json.Str e.sp_cat);
            ("ph", Json.Str "X");
            ("ts", Json.Float (e.sp_ts_us -. t_base));
            ("dur", Json.Float e.sp_dur_us);
            ("pid", Json.Int 1);
            ("tid", Json.Int e.sp_tid);
            ("args", Json.Obj (List.map (fun (k, s) -> (k, Json.Str s)) e.sp_args));
          ])
      v.spans
  in
  Json.Obj
    [
      ("schema", Json.Str trace_schema_version);
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (thread_meta @ events));
    ]

let write_trace ~path v = Json.to_file path (trace_json v)

let quantile_json h q =
  match Hist.quantile h q with None -> Json.Null | Some x -> Json.Float x

let metrics_lines ?(redact_volatile = false) ~command ~meta (v : view) :
    string list =
  let header =
    Json.Obj
      [
        ("schema", Json.Str metrics_schema_version);
        ("command", Json.Str command);
        ("meta", Json.Obj meta);
        ( "host",
          if redact_volatile then Json.Null else Json.Str (Unix.gethostname ())
        );
        ( "generated_at_us",
          if redact_volatile then Json.Null
          else Json.Int (int_of_float (now_us ())) );
      ]
  in
  let counter_line (name, value) =
    Json.Obj
      [
        ("type", Json.Str "counter");
        ("name", Json.Str name);
        ("value", Json.Int value);
      ]
  in
  let hist_line (name, h) =
    (* Sample counts are deterministic (one per observation site hit);
       the sampled values are wall-clock latencies, so quantiles and
       buckets are the volatile part. *)
    Json.Obj
      ([
         ("type", Json.Str "histogram");
         ("name", Json.Str name);
         ("count", Json.Int (Hist.count h));
         ("p50", if redact_volatile then Json.Null else quantile_json h 0.50);
         ("p90", if redact_volatile then Json.Null else quantile_json h 0.90);
         ("p99", if redact_volatile then Json.Null else quantile_json h 0.99);
       ]
      @
      if redact_volatile then []
      else
        [
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (b, c) -> Json.Arr [ Json.Int b; Json.Int c ])
                 (Hist.buckets h)) );
        ])
  in
  let site_line ((func, pc), c) =
    Json.Obj
      [
        ("type", Json.Str "fault_site");
        ("func", Json.Str func);
        ("pc", Json.Int pc);
        ("crash", Json.Int c.(0));
        ("infinite", Json.Int c.(1));
        ("completed", Json.Int c.(2));
        ("total", Json.Int (c.(0) + c.(1) + c.(2)));
      ]
  in
  List.map Json.to_compact_string
    ((header :: List.map counter_line v.counters)
    @ List.map hist_line v.hists
    @ List.map site_line v.sites)

let write_metrics ~path ~command ~meta v =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (metrics_lines ~command ~meta v))

(* ------------------------------------------------------------------ *)
(* OpenMetrics / Prometheus text exposition.                           *)

(* Metric names: the etap namespace prefix plus the counter/histogram
   name with every character outside [a-zA-Z0-9_:] replaced by '_'
   (etap names use '.' as the separator: "serve.warm_hit" becomes
   "etap_serve_warm_hit"). *)
let om_name name =
  let b = Bytes.of_string ("etap_" ^ name) in
  Bytes.iteri
    (fun i c ->
      let ok =
        c = '_' || c = ':'
        || (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let om_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_float x = Printf.sprintf "%.9g" x

(* The merged view in OpenMetrics text exposition format: every
   counter as a counter family ([_total] sample), every histogram as a
   histogram family (cumulative [_bucket{le=...}] samples over the
   occupied log-bucket upper representatives, then [_sum]/[_count] —
   [_sum] is [Hist.sum_approx] since exact sums are not stored), and
   the site tally as one labelled counter family
   [etap_fault_site_total{func,pc,class}]. Terminated by the mandatory
   [# EOF] line. *)
let openmetrics_lines (v : view) : string list =
  let counter (name, value) =
    let n = om_name name in
    [
      Printf.sprintf "# TYPE %s counter" n;
      Printf.sprintf "%s_total %d" n value;
    ]
  in
  let hist (name, h) =
    let n = om_name name in
    let cum = ref 0 in
    let buckets =
      List.map
        (fun (b, c) ->
          cum := !cum + c;
          Printf.sprintf "%s_bucket{le=\"%s\"} %d" n
            (om_float (Hist.bucket_value b))
            !cum)
        (Hist.buckets h)
    in
    (Printf.sprintf "# TYPE %s histogram" n :: buckets)
    @ [
        Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" n (Hist.count h);
        Printf.sprintf "%s_sum %s" n (om_float (Hist.sum_approx h));
        Printf.sprintf "%s_count %d" n (Hist.count h);
      ]
  in
  let sites =
    if v.sites = [] then []
    else
      "# TYPE etap_fault_site counter"
      :: List.concat_map
           (fun ((func, pc), c) ->
             List.map
               (fun cls ->
                 Printf.sprintf
                   "etap_fault_site_total{func=\"%s\",pc=\"%d\",class=\"%s\"} %d"
                   (om_label_value func) pc cls
                   c.(match cls with
                      | "crash" -> 0
                      | "infinite" -> 1
                      | _ -> 2))
               [ "crash"; "infinite"; "completed" ])
           v.sites
  in
  List.concat_map counter v.counters
  @ List.concat_map hist v.hists
  @ sites
  @ [ "# EOF" ]

let write_openmetrics ~path (v : view) =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (openmetrics_lines v))
