lib/apps/art.ml: App Array Fidelity Mlang Sim Workloads
