lib/ir/cfg.ml: Array Format Func Instr List String
