lib/apps/app.ml: Array Int32 Ir Sim
