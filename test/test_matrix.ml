(* Matrix sweep runner (Harness.Matrix).

   The load-bearing properties:
   - every requested cell appears in the result, in spec order, with a
     typed status — unknown apps fail, empty injectable pools skip,
     nothing silently disappears;
   - an Ok cell's summary is bit-identical to the equivalent standalone
     campaign (the `etap inject --incremental` configuration: campaign
     seed = spec seed + 100, app scorer against the mode's golden);
   - a warm re-run of an unchanged spec is served entirely from the
     cache and composes the same summaries;
   - the report tables carry one row per cell and the anomaly table
     clusters what the sweep surfaced. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let fresh_cache_dir () =
  incr dir_counter;
  let d = Printf.sprintf "_matrix_test_cache_%d" !dir_counter in
  rm_rf d;
  d

let with_store f =
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f (Core.Memo.Store.open_ dir))

let summary_core (s : Core.Campaign.summary) =
  ( s.Core.Campaign.trials,
    s.Core.Campaign.stats,
    s.Core.Campaign.errors_requested,
    s.Core.Campaign.errors_planned )

let statuses_of (r : Harness.Matrix.result) =
  List.map
    (fun (c : Harness.Matrix.cell) ->
      Harness.Matrix.status_kind c.Harness.Matrix.status)
    r.Harness.Matrix.cells

(* ------------------------- cell statuses --------------------------- *)

let test_statuses () =
  let spec =
    {
      Harness.Matrix.apps = [ "gsm"; "adpcm"; "nope" ];
      mode = Harness.Experiment.Full;
      policies = [ Core.Policy.Protect_control; Core.Policy.Protect_all ];
      errors = [ 1; 2 ];
      trials = 4;
      seed = 1;
    }
  in
  with_store @@ fun store ->
  let r = Harness.Matrix.run ~jobs:2 ~store spec in
  (* Cross product, spec order: app-major, then policy, then errors. *)
  Alcotest.(check int) "every requested cell present" 12
    (List.length r.Harness.Matrix.cells);
  Alcotest.(check (list string))
    "typed status per cell, in spec order"
    [
      (* gsm: control runnable, protect-all pool is empty *)
      "ok"; "ok"; "skipped"; "skipped";
      (* adpcm: control pool is empty (no eligible control data) *)
      "skipped"; "skipped"; "skipped"; "skipped";
      (* unknown app: every cell fails, none vanish *)
      "failed"; "failed"; "failed"; "failed";
    ]
    (statuses_of r);
  Alcotest.(check bool) "failed cells flag the sweep" true
    (Harness.Matrix.any_failed r);
  Alcotest.(check int) "failures enumerated" 4
    (List.length (Harness.Matrix.failures r));
  let t = Harness.Matrix.totals r in
  Alcotest.(check int) "totals: requested" 12 t.Harness.Matrix.requested;
  Alcotest.(check int) "totals: ok" 2 t.Harness.Matrix.ok;
  Alcotest.(check int) "totals: skipped" 6 t.Harness.Matrix.skipped;
  Alcotest.(check int) "totals: failed" 4 t.Harness.Matrix.failed;
  (* Anomaly clustering surfaces both oddities, ranked by count. *)
  let anomalies = Harness.Matrix.anomalies r in
  let find s =
    List.find_opt (fun a -> a.Harness.Matrix.signature = s) anomalies
  in
  (match find "empty-pool" with
   | Some a ->
     Alcotest.(check int) "empty-pool occurrences" 6
       a.Harness.Matrix.occurrences;
     Alcotest.(check bool) "examples capped at 3" true
       (List.length a.Harness.Matrix.examples <= 3)
   | None -> Alcotest.fail "no empty-pool anomaly cluster");
  (match find "failed-cell" with
   | Some a ->
     Alcotest.(check int) "failed-cell occurrences" 4
       a.Harness.Matrix.occurrences
   | None -> Alcotest.fail "no failed-cell anomaly cluster");
  (match anomalies with
   | first :: _ ->
     Alcotest.(check string) "ranked by occurrences" "empty-pool"
       first.Harness.Matrix.signature
   | [] -> Alcotest.fail "no anomalies at all")

(* -------------- bit-identity vs standalone campaigns --------------- *)

(* The standalone equivalent of one matrix cell: exactly what
   `etap inject` runs for (app, policy, errors, trials, seed) — same
   loaded context, same scorer, same campaign seed offset. *)
let standalone (l : Harness.Experiment.loaded) ~mode ~policy ~errors ~trials
    ~seed =
  let b = l.Harness.Experiment.built in
  let target = l.Harness.Experiment.target mode in
  let golden = target.Core.Campaign.baseline in
  let score r = b.Apps.App.score ~golden r in
  let p = l.Harness.Experiment.prepared mode policy in
  Core.Campaign.run ~jobs:1 ~score p ~errors ~trials ~seed:(seed + 100)

let test_bit_identity_and_warm () =
  let seed = 3 and trials = 6 in
  let spec =
    {
      Harness.Matrix.apps = [ "gsm" ];
      mode = Harness.Experiment.Full;
      policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ];
      errors = [ 1; 5 ];
      trials;
      seed;
    }
  in
  with_store @@ fun store ->
  let cold = Harness.Matrix.run ~jobs:2 ~store spec in
  Alcotest.(check bool) "no failures" false (Harness.Matrix.any_failed cold);
  let l =
    Harness.Experiment.load ~seed
      (Option.get (Apps.Registry.find "gsm"))
  in
  List.iter
    (fun (c : Harness.Matrix.cell) ->
      let cs = c.Harness.Matrix.cell in
      match c.Harness.Matrix.status with
      | Harness.Matrix.Ok ok ->
        let mono =
          standalone l ~mode:cs.Harness.Matrix.mode
            ~policy:cs.Harness.Matrix.policy ~errors:cs.Harness.Matrix.errors
            ~trials:cs.Harness.Matrix.trials ~seed:cs.Harness.Matrix.seed
        in
        Alcotest.(check bool)
          (Harness.Matrix.cell_label cs
          ^ ": summary bit-identical to standalone campaign")
          true
          (compare (summary_core mono)
             (summary_core ok.Harness.Matrix.summary)
          = 0)
      | _ ->
        Alcotest.fail
          (Harness.Matrix.cell_label cs ^ ": expected an Ok cell"))
    cold.Harness.Matrix.cells;
  (* Warm re-run of the unchanged spec: everything from the cache, and
     the composed summaries match the cold run's bit-for-bit. *)
  let warm = Harness.Matrix.run ~jobs:2 ~store spec in
  let tw = Harness.Matrix.totals warm in
  Alcotest.(check int) "warm: every Ok cell fully cached" 4
    tw.Harness.Matrix.cells_hit;
  Alcotest.(check int) "warm: no trials executed" 0
    tw.Harness.Matrix.trials_run;
  Alcotest.(check int) "warm: all trials reused" (4 * trials)
    tw.Harness.Matrix.trials_reused;
  List.iter2
    (fun (a : Harness.Matrix.cell) (b : Harness.Matrix.cell) ->
      match (a.Harness.Matrix.status, b.Harness.Matrix.status) with
      | Harness.Matrix.Ok x, Harness.Matrix.Ok y ->
        Alcotest.(check bool)
          (Harness.Matrix.cell_label a.Harness.Matrix.cell
          ^ ": warm summary identical to cold")
          true
          (compare
             (summary_core x.Harness.Matrix.summary)
             (summary_core y.Harness.Matrix.summary)
          = 0)
      | _ -> Alcotest.fail "warm run changed a cell's status")
    cold.Harness.Matrix.cells warm.Harness.Matrix.cells

(* Matrix cells and `inject --incremental` share cache keys: a matrix
   cold run must leave the store so a direct Memo.run of the same cell
   is served without executing anything. *)
let test_cache_shared_with_inject () =
  let seed = 3 and trials = 5 and errors = 2 in
  let spec =
    {
      Harness.Matrix.apps = [ "adpcm" ];
      mode = Harness.Experiment.Full;
      policies = [ Core.Policy.Protect_nothing ];
      errors = [ errors ];
      trials;
      seed;
    }
  in
  with_store @@ fun store ->
  let r = Harness.Matrix.run ~jobs:1 ~store spec in
  Alcotest.(check (list string)) "one ok cell" [ "ok" ] (statuses_of r);
  let l =
    Harness.Experiment.load ~seed
      (Option.get (Apps.Registry.find "adpcm"))
  in
  let b = l.Harness.Experiment.built in
  let target = l.Harness.Experiment.target Harness.Experiment.Full in
  let golden = target.Core.Campaign.baseline in
  let score r = b.Apps.App.score ~golden r in
  let p =
    l.Harness.Experiment.prepared Harness.Experiment.Full
      Core.Policy.Protect_nothing
  in
  let s, st =
    Core.Memo.run ~jobs:1 ~score ~salt:"adpcm" ~store p ~errors ~trials
      ~seed:(seed + 100)
  in
  Alcotest.(check int) "inject path: everything reused" 0
    st.Core.Memo.trials_run;
  match r.Harness.Matrix.cells with
  | [ { Harness.Matrix.status = Harness.Matrix.Ok ok; _ } ] ->
    Alcotest.(check bool) "inject path: identical summary" true
      (compare (summary_core s) (summary_core ok.Harness.Matrix.summary) = 0)
  | _ -> Alcotest.fail "expected exactly one ok cell"

(* --------------------------- reporting ----------------------------- *)

let test_report_tables () =
  let spec =
    {
      Harness.Matrix.apps = [ "adpcm"; "nope" ];
      mode = Harness.Experiment.Full;
      policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ];
      errors = [ 1 ];
      trials = 3;
      seed = 1;
    }
  in
  with_store @@ fun store ->
  let r = Harness.Matrix.run ~jobs:1 ~store spec in
  let table = Harness.Matrix.to_table r in
  Alcotest.(check int) "one row per requested cell" 4
    (List.length table.Report.rows);
  let rendered = Report.to_text table in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i =
      i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (contains needle))
    [ "adpcm"; "skipped"; "failed"; "empty injectable pool" ];
  let anomaly_table = Harness.Matrix.anomaly_table r in
  Alcotest.(check bool) "anomaly table non-empty" true
    (anomaly_table.Report.rows <> [])

(* --------------------------- spec JSON ----------------------------- *)

let test_spec_of_json () =
  let base = Harness.Matrix.default_spec in
  let parse s =
    match Report.Json.of_string s with
    | Ok j -> Harness.Matrix.spec_of_json ~base j
    | Error e -> Alcotest.failf "JSON parse failed: %s" e
  in
  (match
     parse
       {|{"apps": ["gsm"], "policies": ["control", "all"],
          "errors": [2, 7], "trials": 9, "seed": 4, "literal": true}|}
   with
   | Ok s ->
     Alcotest.(check (list string)) "apps" [ "gsm" ] s.Harness.Matrix.apps;
     Alcotest.(check int) "policies" 2
       (List.length s.Harness.Matrix.policies);
     Alcotest.(check (list int)) "errors" [ 2; 7 ] s.Harness.Matrix.errors;
     Alcotest.(check int) "trials" 9 s.Harness.Matrix.trials;
     Alcotest.(check int) "seed" 4 s.Harness.Matrix.seed;
     Alcotest.(check bool) "literal" true
       (s.Harness.Matrix.mode = Harness.Experiment.Literal)
   | Error e -> Alcotest.failf "spec rejected: %s" e);
  (* Absent fields fall back to the base spec. *)
  (match parse {|{"trials": 2}|} with
   | Ok s ->
     Alcotest.(check int) "trials overridden" 2 s.Harness.Matrix.trials;
     Alcotest.(check (list int)) "errors defaulted"
       base.Harness.Matrix.errors s.Harness.Matrix.errors;
     Alcotest.(check bool) "apps defaulted" true
       (s.Harness.Matrix.apps = base.Harness.Matrix.apps)
   | Error e -> Alcotest.failf "partial spec rejected: %s" e);
  (* Malformed specs are usage errors, not cell failures. *)
  (match parse {|{"policies": ["bogus"]}|} with
   | Ok _ -> Alcotest.fail "bogus policy accepted"
   | Error _ -> ());
  match parse {|[1, 2]|} with
  | Ok _ -> Alcotest.fail "non-object spec accepted"
  | Error _ -> ()

let () =
  Alcotest.run "matrix"
    [
      ( "statuses",
        [ Alcotest.test_case "typed status per requested cell" `Quick
            test_statuses ] );
      ( "equivalence",
        [
          Alcotest.test_case "cells bit-identical to standalone + warm rerun"
            `Quick test_bit_identity_and_warm;
          Alcotest.test_case "cache shared with inject --incremental" `Quick
            test_cache_shared_with_inject;
        ] );
      ( "reporting",
        [ Alcotest.test_case "tables carry every cell" `Quick
            test_report_tables ] );
      ( "spec",
        [ Alcotest.test_case "JSON spec parsing" `Quick test_spec_of_json ] );
    ]
