(* Report layer: JSON document hygiene (valid tokens only — a nan or
   inf value must surface as null), column key slugs, row padding, and
   the text renderer's alignment on ragged input. *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_scalars () =
  let open Report.Json in
  Alcotest.(check string) "float" "1.5\n" (to_string (Float 1.5));
  Alcotest.(check string) "integral float" "3.0\n" (to_string (Float 3.0));
  Alcotest.(check string) "nan -> null" "null\n" (to_string (Float Float.nan));
  Alcotest.(check string) "inf -> null" "null\n"
    (to_string (Float Float.infinity));
  Alcotest.(check string) "neg inf -> null" "null\n"
    (to_string (Float Float.neg_infinity));
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\"\n"
    (to_string (Str "a\"b\n"))

let test_no_bare_nan_inf () =
  let t =
    Report.table ~id:"x" ~title:"X"
      ~columns:[ Report.column "a"; Report.column "b" ]
      [
        [
          Report.num ~text:"nan%" Float.nan;
          Report.num ~text:"inf dB" Float.infinity;
        ];
        [ Report.pct 50.0 ] (* short row: second cell pads to null *);
      ]
  in
  let s =
    Report.Json.to_string (Report.to_json (Report.make ~command:"test" [ t ]))
  in
  Alcotest.(check bool) "schema stamped" true (contains s "etap-report/1");
  Alcotest.(check bool) "null present" true (contains s "null");
  (* strip the quoted display strings, then no nan/inf token may remain *)
  let bare =
    String.concat ""
      (List.filteri (fun i _ -> i mod 2 = 0) (String.split_on_char '"' s))
  in
  Alcotest.(check bool) "no bare nan" false (contains bare "nan");
  Alcotest.(check bool) "no bare inf" false (contains bare "inf")

let test_column_slug () =
  Alcotest.(check string) "slug" "analysis_on_failed"
    (Report.column "analysis ON: % failed").Report.key;
  Alcotest.(check string) "explicit key wins" "k"
    (Report.column ~key:"k" "Label").Report.key

let test_text_alignment_ragged () =
  let t =
    Report.table ~id:"r" ~title:"R"
      ~columns:[ Report.column "one"; Report.column "two" ]
      [ [ Report.text "xxxxxxxx" ]; [ Report.int 1; Report.int 2 ] ]
  in
  let lines = String.split_on_char '\n' (Report.to_text t) in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 then Some (String.length l) else None)
      (List.tl lines)
  in
  match widths with
  | w :: rest ->
    List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines"

let test_opt_cell () =
  Alcotest.(check string) "some" "12.3%"
    (Report.cell_text (Report.opt ~missing:"n/a" Report.pct (Some 12.34)));
  Alcotest.(check string) "none" "n/a"
    (Report.cell_text (Report.opt ~missing:"n/a" Report.pct None))

let () =
  Alcotest.run "report"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "no bare nan/inf" `Quick test_no_bare_nan_inf;
        ] );
      ( "tables",
        [
          Alcotest.test_case "column slugs" `Quick test_column_slug;
          Alcotest.test_case "ragged alignment" `Quick
            test_text_alignment_ragged;
          Alcotest.test_case "opt cells" `Quick test_opt_cell;
        ] );
    ]
