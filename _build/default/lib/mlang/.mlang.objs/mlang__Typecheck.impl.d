lib/mlang/typecheck.ml: Array Ast Hashtbl Int32 List Map Printf String
