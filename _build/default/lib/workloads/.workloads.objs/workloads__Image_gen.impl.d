lib/workloads/image_gen.ml: Array List Rng
