(* Ablations called out in DESIGN.md.

   A. Address protection: the paper's Section-3 rules (Literal) versus
      control+address protection (Full). Quantifies both sides of the
      trade: the protected-instruction fraction and the residual
      catastrophic-failure rate under protection.

   B. Function eligibility: what the programmer's eligibility marking
      buys. Campaigns on a variant program in which *every* function
      (including the top-level driver) is eligible for relaxation. *)

type address_row = {
  app_name : string;
  pct_low_full : float;
  pct_low_literal : float;
  pct_fail_full : float;
  pct_fail_literal : float;
  errors : int;
}

let address ?(errors = 20) ?(trials = 20) ?(seed = 31) ?jobs
    (loaded : Experiment.loaded list) : address_row list =
  List.map
    (fun (l : Experiment.loaded) ->
      let frac mode =
        let t = l.Experiment.target mode in
        100.0
        *. Core.Tagging.dynamic_low_fraction t.Core.Campaign.tagging
             t.Core.Campaign.baseline.Sim.Interp.exec_counts
      in
      let fail mode =
        Experiment.pct_catastrophic ?jobs l
          ~mode ~policy:Core.Policy.Protect_control ~errors ~trials ~seed
      in
      {
        app_name = l.Experiment.app.Apps.App.name;
        pct_low_full = frac Experiment.Full;
        pct_low_literal = frac Experiment.Literal;
        pct_fail_full = fail Experiment.Full;
        pct_fail_literal = fail Experiment.Literal;
        errors;
      })
    loaded

let address_table rows : Report.table =
  let errors =
    match rows with [] -> 0 | r :: _ -> r.errors
  in
  Report.table ~id:"ablation_address"
    ~title:
      (Printf.sprintf
         "Ablation A: address protection (catastrophic %% at %d errors, \
          protection ON)"
         errors)
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"pct_low_full" "% low-rel (ctrl+addr)";
        Report.column ~key:"pct_low_literal" "% low-rel (literal)";
        Report.column ~key:"pct_fail_full" "% fail (ctrl+addr)";
        Report.column ~key:"pct_fail_literal" "% fail (literal)";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.pct r.pct_low_full;
           Report.pct r.pct_low_literal;
           Report.pct r.pct_fail_full;
           Report.pct r.pct_fail_literal;
         ])
       rows)

let render_address rows = Report.to_text (address_table rows)

(* ------------------------------------------------------------------ *)

(* B. Eligibility: the paper's benchmarks concentrate all work in
   compute kernels, so protecting their (trivial) drivers is nearly
   free — a finding in itself, reported by [driver_rows]. To expose
   what the marking *buys*, [pipeline_rows] studies a two-stage sensor
   pipeline (smoothing kernel feeding a threshold peak detector) under
   three programmer choices: nothing eligible, only the data kernel
   (recommended), or everything including the detector. *)

type eligibility_row = {
  config : string;
  pool : int;            (* injectable dynamic instructions *)
  pct_fail : float;
  mean_fidelity : float option;
      (* recall of true peaks on completed runs; None if none completed *)
  errors : int;
}

let pipeline_samples = 256

let pipeline_program ~smooth_eligible ~detect_eligible =
  let open Mlang.Dsl in
  let n = pipeline_samples in
  let samples =
    Array.init n (fun k ->
        let base = 100.0 *. sin (float_of_int k /. 9.0) in
        let spike = if k mod 61 >= 16 && k mod 61 <= 18 then 400 else 0 in
        (* Total conversion (not raw [int_of_float], unspecified off the
           int range) so sample generation stays defined whatever the
           expression above evolves into. Same clamp as
           [Memory.read_global_ints]; [base] is in [-100, 100] today,
           so the emitted samples are unchanged. *)
        Int32.of_int (Sim.Memory.int_of_float_total base + spike + 500))
  in
  program
    [ garray_init "raw" samples; garray "smooth" n; garray "peaks" 16;
      garray "n_peaks" 1 ]
    [
      fn ~eligible:smooth_eligible "smooth_all" [] ~ret:None
        [
          for_ "k" (i 2) (i (n - 2))
            [
              let_ "acc"
                ("raw".%(v "k" -! i 2) +! "raw".%(v "k" -! i 1)
                +! "raw".%(v "k") +! "raw".%(v "k" +! i 1)
                +! "raw".%(v "k" +! i 2));
              sto "smooth" (v "k") (v "acc" /! i 5);
            ];
        ];
      fn ~eligible:detect_eligible "detect" [] ~ret:None
        [
          let_ "count" (i 0);
          for_ "k" (i 1) (i (n - 1))
            [
              when_
                ((("smooth".%(v "k") >! i 700)
                 &&! ("smooth".%(v "k") >=! "smooth".%(v "k" -! i 1)))
                &&! ("smooth".%(v "k") >=! "smooth".%(v "k" +! i 1)))
                [
                  when_ (v "count" <! i 16)
                    [
                      sto "peaks" (v "count") (v "k");
                      set "count" (v "count" +! i 1);
                    ];
                ];
            ];
          sto "n_peaks" (i 0) (v "count");
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "smooth_all" []; call_ "detect" []; ret (i 0) ];
    ]

let eligibility ?(errors = 6) ?(trials = 30) ?(seed = 37) ?jobs () :
    eligibility_row list =
  List.map
    (fun (config, smooth_eligible, detect_eligible) ->
      let prog =
        Mlang.Compile.to_ir (pipeline_program ~smooth_eligible ~detect_eligible)
      in
      let target = Core.Campaign.of_prog prog in
      let golden = target.Core.Campaign.baseline in
      let read r name =
        Sim.Memory.read_global_ints r.Sim.Interp.memory prog name
      in
      let peak_list r =
        let count = (read r "n_peaks").(0) in
        let peaks = read r "peaks" in
        List.init (max 0 (min count 16)) (fun k -> peaks.(k))
      in
      let golden_peaks = peak_list golden in
      let prepared = Core.Campaign.prepare target Core.Policy.Protect_control in
      (* Recall of the true peaks, scored at the source: the peak lists
         are read out of each trial's memory image on the worker domain
         and only the percentage survives. *)
      let score r =
        let got = peak_list r in
        let found = List.filter (fun p -> List.mem p got) golden_peaks in
        100.0
        *. float_of_int (List.length found)
        /. float_of_int (max 1 (List.length golden_peaks))
      in
      let s = Core.Campaign.run ?jobs ~score prepared ~errors ~trials ~seed in
      {
        config;
        pool = prepared.Core.Campaign.injectable_total;
        pct_fail = Core.Campaign.pct_catastrophic s;
        mean_fidelity = Core.Campaign.mean_fidelity s;
        errors;
      })
    [
      ("nothing eligible", false, false);
      ("data kernel only (recommended)", true, false);
      ("everything eligible", true, true);
    ]

let eligibility_table rows : Report.table =
  let errors = match rows with [] -> 0 | r :: _ -> r.errors in
  Report.table ~id:"ablation_eligibility"
    ~title:
      (Printf.sprintf
         "Ablation B: eligibility marking on a sensor pipeline (%d errors, \
          protection ON)"
         errors)
    ~columns:
      [
        Report.column ~key:"configuration" "configuration";
        Report.column ~key:"pool" "injectable pool";
        Report.column ~key:"pct_catastrophic" "% catastrophic";
        Report.column ~key:"recall" "true-peak recall";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.config;
           Report.int r.pool;
           Report.pct r.pct_fail;
           Report.opt ~missing:"n/a (all failed)" Report.pct r.mean_fidelity;
         ])
       rows)

let render_eligibility rows = Report.to_text (eligibility_table rows)
