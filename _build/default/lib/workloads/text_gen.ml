(* ASCII text input for the Blowfish round trip — structured English-
   like word salad so that "percent of bytes correct" degrades the way
   it does on the paper's ASCII input file. *)

let words =
  [|
    "the"; "vehicle"; "schedule"; "error"; "tolerant"; "control"; "data";
    "soft"; "radiation"; "latch"; "frame"; "signal"; "noise"; "cipher";
    "network"; "simplex"; "neural"; "image"; "speech"; "encode"; "decode";
    "fidelity"; "threshold"; "pipeline"; "register"; "branch"; "memory";
  |]

let generate ~seed ~bytes =
  let rng = Rng.make seed in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    Buffer.add_string buf words.(Rng.int rng (Array.length words));
    Buffer.add_char buf ' '
  done;
  String.sub (Buffer.contents buf) 0 bytes

(* Pack ASCII bytes big-endian into 32-bit words (padded with spaces),
   the block layout the Blowfish program works on. *)
let to_words s =
  let n = (String.length s + 3) / 4 in
  Array.init n (fun w ->
      let byte k =
        let i = (4 * w) + k in
        if i < String.length s then Char.code s.[i] else Char.code ' '
      in
      Int32.of_int
        ((byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3))

let of_words (a : int array) =
  let buf = Buffer.create (4 * Array.length a) in
  Array.iter
    (fun w ->
      List.iter
        (fun shift -> Buffer.add_char buf (Char.chr ((w lsr shift) land 0xFF)))
        [ 24; 16; 8; 0 ])
    a;
  Buffer.contents buf
