test/test_sim.ml: Alcotest Array Func Hashtbl Instr Int32 Int64 Ir Prog QCheck QCheck_alcotest Reg Sim Ty
