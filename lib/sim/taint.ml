(* Shadow taint for dynamic fault-flow classification (DESIGN §11).

   Alongside each register and each memory cell the taint interpreter
   carries a 2-bit mask:

     bit 0 — the value derives (transitively) from an injected fault;
     bit 1 — the derivation chain passed through memory: the value was
             stored and loaded back, or came out of a load whose base
             address was corrupted.

   The lattice is the powerset of the two bits ordered by inclusion;
   [union] ([lor]) is the join and [none] the bottom. Bit 1 is sticky:
   [loaded]/[stored] set it and every further propagation unions it
   along. That stickiness is exactly the paper's "no memory
   disambiguation" exclusion — the tagging analysis terminates def-use
   chains at loads and lets stored values escape untracked, so
   contamination that round-trips through memory is the *documented*
   residual of the protection scheme, not a soundness bug. The audit
   ([Core.Audit]) therefore asserts the tagging invariant only over
   memory-free chains: bit 0 set, bit 1 clear.

   A [tracker] accumulates first-contamination events at the sinks the
   paper's failure modes run through:

   - a tainted branch operand ([sink_control]) — the fault reached
     control flow; counted separately for memory-free chains (the
     invariant) and through-memory chains (the residual);
   - a tainted load/store base register ([sink_address]) — a wild
     access in the making;
   - a tainted integer div/rem denominator or [F2i] operand
     ([sink_trap_operand]) — a trap hazard: these cannot redirect a
     branch but can crash the run, the paper's other catastrophic
     class;
   - a tainted stored value ([sink_memory]) — silent data corruption
     now resident in the image.

   [summarize] collapses the event counts into the five-class
   [flow] taxonomy, ordered by severity. *)

type mask = int

let none : mask = 0
let fresh : mask = 1 (* seeded at the injection site: tainted, memory-free *)

let is_tainted (m : mask) = m land 1 <> 0
let via_memory (m : mask) = m land 2 <> 0

(* Anything that comes out of memory (or through a corrupted base) is a
   through-memory chain from here on. Clean stays clean. *)
let memified (m : mask) = if m = 0 then 0 else m lor 2

let loaded ~cell ~base : mask = memified (cell lor base)
let stored (m : mask) : mask = memified m

type flow =
  | Vanished        (* taint never propagated past the injected register *)
  | Data_only       (* propagated through registers, reached no sink *)
  | Reached_memory  (* a tainted value was stored *)
  | Reached_address (* a tainted base address / div denominator / F2i operand *)
  | Reached_control (* a tainted branch operand *)

let all_flows =
  [ Vanished; Data_only; Reached_memory; Reached_address; Reached_control ]

let flow_to_string = function
  | Vanished -> "vanished"
  | Data_only -> "data-only"
  | Reached_memory -> "reached-memory"
  | Reached_address -> "reached-address"
  | Reached_control -> "reached-control"

let pp_flow fmt f = Format.pp_print_string fmt (flow_to_string f)

type tracker = {
  mutable propagated : bool;
  mutable control_free : int;
  mutable control_via_memory : int;
  mutable address_hits : int;
  mutable trap_operand_hits : int;
  mutable memory_hits : int;
  mutable first_control_fid : int; (* first memory-free control event *)
  mutable first_control_pc : int;
  mem : Bytes.t; (* per-cell taint mask, parallel to the data image *)
}

let make ~cells =
  {
    propagated = false;
    control_free = 0;
    control_via_memory = 0;
    address_hits = 0;
    trap_operand_hits = 0;
    memory_hits = 0;
    first_control_fid = -1;
    first_control_pc = -1;
    mem = Bytes.make (max cells 0) '\000';
  }

let mem_get tr c : mask = Char.code (Bytes.unsafe_get tr.mem c)
let mem_set tr c (m : mask) = Bytes.unsafe_set tr.mem c (Char.unsafe_chr m)

(* Byte stores overwrite one lane of a cell, so taint accumulates
   instead of replacing. *)
let mem_union tr c (m : mask) = mem_set tr c (mem_get tr c lor m)

let propagate tr (m : mask) = if m <> 0 then tr.propagated <- true

let sink_control tr ~fid ~pc (m : mask) =
  if is_tainted m then
    if via_memory m then tr.control_via_memory <- tr.control_via_memory + 1
    else begin
      tr.control_free <- tr.control_free + 1;
      if tr.first_control_fid < 0 then begin
        tr.first_control_fid <- fid;
        tr.first_control_pc <- pc
      end
    end

let sink_address tr (m : mask) =
  if is_tainted m then tr.address_hits <- tr.address_hits + 1

let sink_trap_operand tr (m : mask) =
  if is_tainted m then tr.trap_operand_hits <- tr.trap_operand_hits + 1

let sink_memory tr (m : mask) =
  if is_tainted m then tr.memory_hits <- tr.memory_hits + 1

type summary = {
  flow : flow;
  control_free : int;
  control_via_memory : int;
  address_hits : int;
  trap_operand_hits : int;
  memory_hits : int;
  first_control : (string * int) option;
      (* site of the first memory-free control contamination *)
}

let summarize (tr : tracker) ~func_name : summary =
  let flow =
    if tr.control_free + tr.control_via_memory > 0 then Reached_control
    else if tr.address_hits + tr.trap_operand_hits > 0 then Reached_address
    else if tr.memory_hits > 0 then Reached_memory
    else if tr.propagated then Data_only
    else Vanished
  in
  {
    flow;
    control_free = tr.control_free;
    control_via_memory = tr.control_via_memory;
    address_hits = tr.address_hits;
    trap_operand_hits = tr.trap_operand_hits;
    memory_hits = tr.memory_hits;
    first_control =
      (if tr.first_control_fid >= 0 then
         Some (func_name tr.first_control_fid, tr.first_control_pc)
       else None);
  }
