(* Telemetry layer tests.

   Three claims, matching the lib/obs determinism contract (DESIGN.md
   §13):

   1. The histogram primitive merges exactly: associative, commutative,
      and equal to a single pass over the concatenated samples; its
      quantile never returns nan.
   2. A sink merges per-domain buffers into totals that depend only on
      what was recorded, not on which domain recorded it.
   3. Campaign telemetry is invariant: every counter and fault-site
      tally is identical across --jobs values, the campaign.*/sim.*
      families (and the site tallies) are additionally identical across
      checkpoint strides, and turning telemetry on does not perturb the
      trial records.

   Plus the reason it is safe to leave the instrumentation in place:
   the disabled-sink recording path does not allocate. *)

let hist_of xs = List.fold_left Obs.Hist.add Obs.Hist.empty xs

let hist_eq a b =
  Obs.Hist.count a = Obs.Hist.count b
  && Obs.Hist.buckets a = Obs.Hist.buckets b

(* Samples include negatives, zeros and nan — all must land in the
   underflow bucket rather than corrupt the merge. *)
let samples =
  QCheck.(
    list_of_size
      Gen.(int_range 0 100)
      (oneof
         [
           float_range (-10.0) 1e9;
           always 0.0;
           always Float.nan;
           always 1e-12;
         ]))

let merge_is_concat =
  QCheck.Test.make ~name:"Hist.merge = one pass over the concatenation"
    ~count:300
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      hist_eq (Obs.Hist.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)))

let merge_commutes =
  QCheck.Test.make ~name:"Hist.merge commutative" ~count:300
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_eq (Obs.Hist.merge a b) (Obs.Hist.merge b a))

let merge_associates =
  QCheck.Test.make ~name:"Hist.merge associative" ~count:300
    QCheck.(triple samples samples samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_eq
        (Obs.Hist.merge a (Obs.Hist.merge b c))
        (Obs.Hist.merge (Obs.Hist.merge a b) c))

let quantile_total =
  QCheck.Test.make ~name:"Hist.quantile finite on non-empty, None on empty"
    ~count:300
    QCheck.(pair samples (float_range (-0.5) 1.5))
    (fun (xs, q) ->
      match Obs.Hist.quantile (hist_of xs) q with
      | None -> xs = []
      | Some v -> xs <> [] && Float.is_finite v && v >= 0.0)

(* Quantiles are bucket representatives: within one sub-octave (~9%)
   of the true order statistic for positive samples. *)
let test_quantile_bucket_accuracy () =
  let h = hist_of [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  (match Obs.Hist.quantile h 0.5 with
   | Some v ->
     Alcotest.(check bool) "median near 4" true (v > 3.5 && v < 4.5)
   | None -> Alcotest.fail "median of non-empty histogram");
  match Obs.Hist.quantile h 1.0 with
  | Some v -> Alcotest.(check bool) "max near 16" true (v > 14.0 && v < 18.0)
  | None -> Alcotest.fail "p100 of non-empty histogram"

(* ------------------------------------------------------------------ *)
(* Sink: multi-domain totals.                                          *)

let test_sink_multi_domain () =
  let sink = Obs.make () in
  Obs.with_sink sink (fun () ->
      let worker k () =
        for i = 1 to 100 do
          Obs.count "ticks" 1;
          Obs.observe "lat" (float_of_int i);
          if i mod 10 = 0 then
            Obs.site ~func:"f" ~pc:k
              (if k mod 2 = 0 then Obs.Crash else Obs.Completed)
        done
      in
      let ds = List.init 3 (fun k -> Domain.spawn (worker (k + 1))) in
      worker 0 ();
      List.iter Domain.join ds);
  let v = Obs.view sink in
  Alcotest.(check (option int))
    "counter sums across domains" (Some 400)
    (List.assoc_opt "ticks" v.Obs.counters);
  (match List.assoc_opt "lat" v.Obs.hists with
   | Some h -> Alcotest.(check int) "histogram count" 400 (Obs.Hist.count h)
   | None -> Alcotest.fail "lat histogram missing");
  Alcotest.(check int) "site rows" 4 (List.length v.Obs.sites);
  List.iter
    (fun ((_, pc), c) ->
      Alcotest.(check int)
        (Printf.sprintf "site %d tally" pc)
        10
        (c.(Obs.cls_index Obs.Crash) + c.(Obs.cls_index Obs.Completed)))
    v.Obs.sites;
  (* Non-destructive view: reading again yields the same totals. *)
  let v2 = Obs.view sink in
  Alcotest.(check bool) "view is non-destructive" true
    (v.Obs.counters = v2.Obs.counters)

(* ------------------------------------------------------------------ *)
(* Campaign telemetry invariance.                                      *)

let gcd_mlang =
  let open Mlang.Dsl in
  program
    [ garray "out" 2 ]
    [
      fn "gcd" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          while_ (v "b" <>! i 0)
            [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
          ret (v "a");
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "g" (call "gcd" [ i 252; i 105 ]);
          let_ "scaled" (v "g" *! i 3);
          sto "out" (i 0) (v "scaled");
          ret (i 0);
        ];
    ]

let fingerprint (t : Core.Campaign.trial) =
  Printf.sprintf "%d/%s/%d/%d/%d/%s" t.Core.Campaign.index
    (Core.Outcome.describe t.Core.Campaign.outcome)
    t.Core.Campaign.dyn_count t.Core.Campaign.faults_planned
    t.Core.Campaign.faults_landed
    (match t.Core.Campaign.fidelity with
     | None -> "-"
     | Some f -> Printf.sprintf "%h" f)

(* One campaign under a fresh sink; returns trial fingerprints plus the
   merged counters and site tallies. *)
let campaign_obs ~jobs ~stride =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let sink = Obs.make () in
  let summary =
    Obs.with_sink sink (fun () ->
        let p =
          Core.Campaign.prepare ~checkpoint_stride:stride target
            Core.Policy.Protect_nothing
        in
        Core.Campaign.run ~jobs p ~errors:2 ~trials:9 ~seed:5)
  in
  let v = Obs.view sink in
  ( List.map fingerprint summary.Core.Campaign.trials,
    v.Obs.counters,
    List.map (fun (k, c) -> (k, Array.to_list c)) v.Obs.sites )

let campaign_plain ~jobs ~stride =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let p =
    Core.Campaign.prepare ~checkpoint_stride:stride target
      Core.Policy.Protect_nothing
  in
  let s = Core.Campaign.run ~jobs p ~errors:2 ~trials:9 ~seed:5 in
  List.map fingerprint s.Core.Campaign.trials

let stride_invariant_families (counters : (string * int) list) =
  List.filter
    (fun (name, _) ->
      String.starts_with ~prefix:"campaign." name
      || String.starts_with ~prefix:"sim." name)
    counters

let test_jobs_invariance () =
  (* Within each stride, every counter — campaign.*, sim.* and
     snapshot.* alike — and every site tally must be identical for any
     domain fan-out; the trial records must also match a telemetry-off
     run. *)
  List.iter
    (fun stride ->
      let tag j = Printf.sprintf "stride=%d jobs=%d" stride j in
      let (fp1, c1, s1) = campaign_obs ~jobs:1 ~stride in
      Alcotest.(check bool)
        (tag 1 ^ " has campaign counters")
        true
        (List.mem_assoc "campaign.trials" c1);
      List.iter
        (fun jobs ->
          let (fp, c, s) = campaign_obs ~jobs ~stride in
          Alcotest.(check (list string)) (tag jobs ^ " trials") fp1 fp;
          Alcotest.(check bool) (tag jobs ^ " counters") true (c = c1);
          Alcotest.(check bool) (tag jobs ^ " sites") true (s = s1);
          Alcotest.(check (list string))
            (tag jobs ^ " records match obs-off")
            (campaign_plain ~jobs ~stride)
            fp)
        [ 2; 4 ])
    [ 0; 1; 5 ]

let test_stride_invariance () =
  (* Across strides only the snapshot.* family may move: checkpoint
     spacing changes how many restores hit and how much prefix they
     skip, but never what the trials compute. *)
  let (fp0, c0, s0) = campaign_obs ~jobs:2 ~stride:0 in
  let inv0 = stride_invariant_families c0 in
  List.iter
    (fun stride ->
      let (fp, c, s) = campaign_obs ~jobs:2 ~stride in
      let tag = Printf.sprintf "stride=%d" stride in
      Alcotest.(check (list string)) (tag ^ " trials") fp0 fp;
      Alcotest.(check bool)
        (tag ^ " campaign.*/sim.* counters")
        true
        (stride_invariant_families c = inv0);
      Alcotest.(check bool) (tag ^ " sites") true (s = s0))
    [ 1; 3; 5 ]

let test_faults_landed_consistency () =
  (* The site tallies are exactly the landed faults: their grand total
     equals the campaign.faults_landed counter, which equals the
     sim-level counter. *)
  let (_, counters, sites) = campaign_obs ~jobs:2 ~stride:1 in
  let site_total =
    List.fold_left
      (fun n (_, c) -> n + List.fold_left ( + ) 0 c)
      0 sites
  in
  Alcotest.(check (option int))
    "sites sum = campaign.faults_landed" (Some site_total)
    (List.assoc_opt "campaign.faults_landed" counters);
  Alcotest.(check (option int))
    "sim.faults_landed agrees" (Some site_total)
    (List.assoc_opt "sim.faults_landed" counters)

(* ------------------------------------------------------------------ *)
(* Disabled-path allocation guard.                                     *)

let test_disabled_no_alloc () =
  Alcotest.(check bool) "ambient sink disabled" false (Obs.enabled ());
  (* Warm up so any one-time setup is paid before measuring. *)
  for _ = 1 to 100 do
    Obs.count "warm" 1
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.count "c" 1;
    Obs.observe "h" 1.0;
    let t0 = Obs.span_begin () in
    Obs.span_end ~name:"s" t0
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled recording allocates nothing (%.0f minor words)"
       dw)
    true (dw < 256.0)

let test_interp_alloc_unchanged () =
  (* The interpreter's per-run allocation must be identical with the
     instrumentation compiled in but disabled: a bit-identical workload
     allocates a bit-identical number of minor words. *)
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let code = Sim.Code.of_prog prog in
  let measure () =
    let w0 = Gc.minor_words () in
    ignore (Sim.Interp.run_exn code);
    Gc.minor_words () -. w0
  in
  ignore (measure ());  (* warm-up: first run pays lazy setup *)
  let a = measure () and b = measure () in
  Alcotest.(check (float 0.0)) "warm interpreter runs allocate equally" a b

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          QCheck_alcotest.to_alcotest merge_is_concat;
          QCheck_alcotest.to_alcotest merge_commutes;
          QCheck_alcotest.to_alcotest merge_associates;
          QCheck_alcotest.to_alcotest quantile_total;
          Alcotest.test_case "quantile bucket accuracy" `Quick
            test_quantile_bucket_accuracy;
        ] );
      ( "sink",
        [ Alcotest.test_case "multi-domain merge" `Quick test_sink_multi_domain ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs invariance (per stride)" `Quick
            test_jobs_invariance;
          Alcotest.test_case "stride invariance (campaign.*/sim.*)" `Quick
            test_stride_invariance;
          Alcotest.test_case "faults-landed consistency" `Quick
            test_faults_landed_consistency;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_no_alloc;
          Alcotest.test_case "interpreter allocation unchanged" `Quick
            test_interp_alloc_unchanged;
        ] );
    ]
