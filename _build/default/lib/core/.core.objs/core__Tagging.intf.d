lib/core/tagging.mli: Hashtbl Ir Policy
