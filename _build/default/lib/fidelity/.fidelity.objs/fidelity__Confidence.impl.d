lib/fidelity/confidence.ml: Float
