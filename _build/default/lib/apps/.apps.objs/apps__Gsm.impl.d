lib/apps/gsm.ml: App Array Fidelity Float Mlang Sim Workloads
